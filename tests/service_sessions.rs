//! The session-service contract, end to end: N threads driving independent
//! sessions over one shared `Generation` produce byte-identical patch
//! streams to the single-threaded run; patches are exact deltas (a view
//! appears iff its resolved SQL changed); and the JSON wire protocol
//! drives the same machinery.

mod common;

use common::generate;
use pi2::{Event, Generation, InteractionChoice, Pi2Service, Value, WidgetKind};
use pi2_workloads::LogKind;
use std::sync::OnceLock;

/// One covid generation shared by the tests in this binary (search is the
/// expensive part; the service layer is what's under test).
fn covid() -> &'static Generation {
    static G: OnceLock<Generation> = OnceLock::new();
    G.get_or_init(|| generate(LogKind::Covid))
}

/// A deterministic event script exercising every interaction of an
/// interface, including events that must fail (errors are part of the
/// deterministic stream).
fn script_for(g: &Generation) -> Vec<Event> {
    let mut script = Vec::new();
    for (ix, inst) in g.interface.interactions.iter().enumerate() {
        match &inst.choice {
            InteractionChoice::Widget { kind, domain, .. } => match kind {
                WidgetKind::Radio | WidgetKind::Dropdown | WidgetKind::Button => {
                    for option in 0..domain.size().min(3) {
                        script.push(Event::Select {
                            interaction: ix,
                            option,
                        });
                    }
                }
                WidgetKind::Toggle => {
                    for on in [false, true, true] {
                        script.push(Event::Toggle {
                            interaction: ix,
                            on,
                        });
                    }
                }
                _ => {
                    script.push(Event::SetValues {
                        interaction: ix,
                        values: vec![Value::Int(30)],
                    });
                    script.push(Event::SetValues {
                        interaction: ix,
                        values: vec![Value::Int(20), Value::Int(40)],
                    });
                }
            },
            InteractionChoice::Vis { .. } => {
                script.push(Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(20), Value::Int(40)],
                });
                script.push(Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(20), Value::Int(40), Value::Int(1), Value::Int(3)],
                });
                script.push(Event::Clear { interaction: ix });
            }
        }
    }
    // Deterministically-failing events belong in the stream too.
    script.push(Event::Select {
        interaction: g.interface.interactions.len() + 7,
        option: 0,
    });
    script.push(Event::SetValues {
        interaction: 0,
        values: vec![],
    });
    script
}

/// Replay a script on a fresh session, serialising every outcome (patch or
/// structured error code) — the byte stream a wire client would observe.
fn replay(g: &Generation, script: &[Event]) -> Vec<String> {
    let mut session = g.session().expect("session opens");
    script
        .iter()
        .map(|event| match session.dispatch(event) {
            Ok(patch) => pi2::patch_to_json(&patch),
            Err(err) => format!("error:{}", err.code()),
        })
        .collect()
}

#[test]
fn concurrent_sessions_are_byte_identical_to_single_threaded() {
    let g = covid();
    let script = script_for(g);
    let reference = replay(g, &script);
    assert!(
        reference
            .iter()
            .any(|s| s.contains("\"views\":[{") && s.contains("\"table\"")),
        "the script must produce at least one non-empty patch"
    );

    const THREADS: usize = 4;
    let streams: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let generation = g.clone(); // Arc-backed, cheap
                let script = &script;
                scope.spawn(move || replay(&generation, script))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, stream) in streams.iter().enumerate() {
        assert_eq!(
            stream, &reference,
            "thread {t} diverged from the single-threaded patch stream"
        );
    }
}

#[test]
fn patches_contain_exactly_the_changed_views() {
    let g = generate(LogKind::Filter);
    let mut session = g.session().unwrap();
    let views = &g.interface.views;
    let sql_of = |s: &pi2::Session| -> Vec<String> {
        views
            .iter()
            .map(|v| s.sql_for_tree(v.tree).unwrap().to_string())
            .collect()
    };
    let mut last = sql_of(&session);
    let mut nonempty = 0;
    for event in script_for(&g) {
        let Ok(patch) = session.dispatch(&event) else {
            continue;
        };
        let now = sql_of(&session);
        let changed: Vec<usize> = (0..views.len()).filter(|&i| now[i] != last[i]).collect();
        let patched: Vec<usize> = patch.views.iter().map(|pv| pv.view).collect();
        assert_eq!(
            patched, changed,
            "patch must list exactly the views whose SQL changed"
        );
        // And the shipped SQL must be the view's current SQL.
        for pv in &patch.views {
            assert_eq!(pv.sql, now[pv.view]);
            assert!(pv.table.num_columns() > 0);
        }
        if !patch.is_empty() {
            nonempty += 1;
        }
        last = now;
    }
    assert!(nonempty > 0, "some event must change some view");
}

#[test]
fn wire_protocol_drives_the_service_end_to_end() {
    let g = covid().clone();
    let service = Pi2Service::new();
    service.register_generation("covid", g.clone()).unwrap();

    // open → opened (session id + spec + full patch)
    let opened = service.handle_json("{\"v\":1,\"type\":\"open\",\"workload\":\"covid\"}");
    let opened_json = pi2::Json::parse(&opened).expect("opened parses");
    assert_eq!(
        opened_json.get("type").and_then(pi2::Json::as_str),
        Some("opened")
    );
    let session_id = opened_json
        .get("session")
        .and_then(pi2::Json::as_i64)
        .expect("session id") as u64;
    let full = opened_json.get("patch").expect("initial patch");
    assert_eq!(
        full.get("views").and_then(pi2::Json::as_arr).unwrap().len(),
        g.interface.views.len(),
        "the opened response carries a full-state patch"
    );

    // Drive the script over the wire; every response is a versioned
    // patch or error message, and patch responses parse with the client
    // codec.
    let mut patches = 0;
    for event in script_for(&g) {
        let request = pi2::request_to_json(&pi2::Request::Event {
            session: session_id,
            event,
        });
        let response = service.handle_json(&request);
        if response.contains("\"type\":\"patch\"") {
            let patch = pi2::patch_from_json(&response).expect("patch parses");
            patches += 1;
            for pv in &patch.views {
                assert!(pv.view < g.interface.views.len());
            }
        } else {
            assert!(response.contains("\"type\":\"error\""), "{response}");
            assert!(response.contains("\"code\":\""), "{response}");
        }
    }
    assert!(patches > 0);

    // Metrics reflect the traffic; close ends the session.
    let metrics = service.handle_json("{\"v\":1,\"type\":\"metrics\"}");
    assert!(
        metrics.contains("\"workloads\":[{\"name\":\"covid\""),
        "{metrics}"
    );
    assert!(metrics.contains("\"resultCache\""), "{metrics}");
    let closed = service.handle_json(&format!(
        "{{\"v\":1,\"type\":\"close\",\"session\":{session_id}}}"
    ));
    assert!(closed.contains("\"type\":\"closed\""), "{closed}");
    let gone = service.handle_json(&format!(
        "{{\"v\":1,\"type\":\"event\",\"session\":{session_id},\
         \"kind\":\"clear\",\"interaction\":0}}"
    ));
    assert!(gone.contains("\"code\":\"unknown_session\""), "{gone}");
}
