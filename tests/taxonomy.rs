//! §7.1: PI2 expresses the data-oriented interactions of Yi et al.'s
//! taxonomy (Figure 14). Encode and Reconfigure are presentation-level and
//! out of scope, exactly as in the paper; Select is supported by every
//! generated visualization's click interaction.
//!
//! The structural assertions accept the near-optimal design variants the
//! paper's appendix discusses (quality ≥ 0.85 interfaces "are nearly the
//! same as the optimal"): what must hold is the *interaction semantics* —
//! which query parts are interactive and through what class of interaction.

mod common;

use common::{assert_exact_cover, generate};
use pi2::{InteractionChoice, InteractionKind, WidgetKind};
use pi2_workloads::LogKind;

/// Explore (Listing 1): panning/zooming controls the hp/mpg range
/// predicates on a single scatterplot (Figure 14a).
#[test]
fn explore_pan_and_zoom() {
    let g = generate(LogKind::Explore);
    assert_exact_cover(&g);
    assert_eq!(g.interface.views.len(), 1, "one merged scatterplot view");
    assert!(
        g.has_vis_interaction(InteractionKind::Pan)
            || g.has_vis_interaction(InteractionKind::Zoom)
            || g.has_vis_interaction(InteractionKind::BrushXY),
        "range predicates must map to a viewport interaction:\n{}",
        g.describe()
    );
    // All four range bounds are interactive.
    assert_eq!(
        g.forest.choice_count(),
        4,
        "\n{}",
        g.forest.trees[0].render()
    );
    // Selection is supported by every chart kind we chose.
    for v in &g.interface.views {
        assert!(v
            .vis
            .kind
            .supported_interactions()
            .contains(&InteractionKind::Click));
    }
}

/// Abstract (Listing 2): the date range is driven by a brush and can be
/// cleared (the level-of-detail change of Figure 14c).
#[test]
fn abstract_overview_detail() {
    let g = generate(LogKind::Abstract);
    assert_exact_cover(&g);
    let has_brush = g.has_vis_interaction(InteractionKind::BrushX)
        || g.has_vis_interaction(InteractionKind::BrushXY);
    assert!(
        has_brush,
        "the optional date window must map to a clearable brush:\n{}",
        g.describe()
    );
}

/// Connect (Listing 3): selecting records in one chart highlights the
/// corresponding rows in the other (Figure 14b) — a visualization
/// interaction on one view binds the other view's tree.
#[test]
fn connect_linked_selection() {
    let g = generate(LogKind::Connect);
    assert_exact_cover(&g);
    assert!(
        g.interface.views.len() >= 2,
        "two linked views:\n{}",
        g.describe()
    );
    assert!(
        g.has_cross_view_link(),
        "an interaction on one chart must bind the other tree:\n{}",
        g.describe()
    );
    assert!(
        g.has_vis_interaction(InteractionKind::MultiClick)
            || g.has_vis_interaction(InteractionKind::Click),
        "the id set must bind through (multi-)click:\n{}",
        g.describe()
    );
}

/// Filter (Listing 4): cross-filtering across the three group-by charts —
/// range interactions drive predicates in *other* trees.
#[test]
fn filter_cross_filtering() {
    let g = generate(LogKind::Filter);
    assert_exact_cover(&g);
    assert!(
        g.interface.views.len() >= 2,
        "multiple charts:\n{}",
        g.describe()
    );
    // Some interaction must be a range control (brush or range slider), and
    // some interaction must reach across trees.
    let has_range = g.interface.interactions.iter().any(|i| {
        matches!(
            &i.choice,
            InteractionChoice::Vis {
                kind: InteractionKind::BrushX | InteractionKind::BrushY | InteractionKind::BrushXY,
                ..
            }
        ) || matches!(
            &i.choice,
            InteractionChoice::Widget {
                kind: WidgetKind::RangeSlider,
                ..
            }
        )
    });
    assert!(
        has_range,
        "range predicates need range interactions:\n{}",
        g.describe()
    );
    let crosses = g.interface.interactions.iter().any(|i| match &i.choice {
        InteractionChoice::Vis { view, .. } => {
            let host = g.interface.views[*view].tree;
            i.target_tree != host || i.extra_targets.iter().any(|t| t.tree != host)
        }
        _ => false,
    });
    assert!(crosses, "cross-filtering links charts:\n{}", g.describe());
}
