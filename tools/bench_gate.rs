//! CI perf-regression gate binary (see `pi2_bench::gate` for the logic).
//!
//! ```text
//! bench_gate check <criterion.csv> <BENCH_baseline.json> <out.json> \
//!     [--baseline-name ci] [--threshold 1.25] [--runner <label>]
//! bench_gate write-baseline <criterion.csv> <out.json> [--baseline-name ci]
//! bench_gate promote <BENCH_PR.json> <BENCH_baseline.json> --runner <label>
//! ```
//!
//! `check` compares the freshly-measured `--save-baseline` means in the
//! CSV against the committed baseline JSON, writes the fresh means to
//! `<out.json>` (the per-PR artifact), prints a per-bench report, and
//! exits non-zero when a gated bench (`mcts/*`, `engine/exec_*`,
//! `data/kernels_*`, `service/session_throughput/*`,
//! `service/server_throughput/*`) regressed by more than the threshold —
//! or went missing. With `--runner <label>`, per-runner means under the
//! baseline's `"runners"` section override the flat (dev-machine) numbers
//! bench by bench; benches with no per-runner entry fall back to the flat
//! baseline — except the runner-sensitive `engine/exec_big_*` /
//! `data/kernels_*` tiers, which only *warn* against another machine's
//! numbers (a single-core runner's flat `t8` is oversubscription, not a
//! regression) until this runner's means are promoted.
//! `write-baseline` regenerates the committed baseline file from a fresh
//! run (flat section only; per-runner entries are carried through).
//! `promote` folds a CI run's `BENCH_PR<n>.json` artifact into the
//! committed baseline's `"runners"` section under `--runner <label>`, so
//! per-runner gating numbers come from the runner itself instead of the
//! dev machine: download the artifact from the CI run, run `promote`, and
//! commit the rewritten baseline.

use pi2_bench::gate;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bench_gate check <criterion.csv> <BENCH_baseline.json> <out.json> \
         [--baseline-name ci] [--threshold 1.25] [--runner <label>]\n  bench_gate \
         write-baseline <criterion.csv> <out.json> [--baseline-name ci]\n  bench_gate \
         promote <BENCH_PR.json> <BENCH_baseline.json> --runner <label>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut baseline_name = "ci".to_string();
    let mut threshold = gate::DEFAULT_THRESHOLD;
    let mut runner: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline-name" => match it.next() {
                Some(v) => baseline_name = v.clone(),
                None => return usage(),
            },
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => threshold = v,
                None => return usage(),
            },
            "--runner" => match it.next() {
                Some(v) => runner = Some(v.clone()),
                None => return usage(),
            },
            other => positional.push(other),
        }
    }
    let read = |path: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            ExitCode::from(2)
        })
    };
    match positional.as_slice() {
        ["check", csv_path, baseline_path, out_path] => {
            let (csv, baseline) = match (read(csv_path), read(baseline_path)) {
                (Ok(c), Ok(b)) => (c, b),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let fresh = gate::parse_csv(&csv, &baseline_name);
            if fresh.is_empty() {
                eprintln!("bench_gate: no '{baseline_name}' rows in {csv_path}");
                return ExitCode::from(2);
            }
            let committed = match gate::parse_baseline_json_for(&baseline, runner.as_deref()) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("bench_gate: bad baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Some(label) = &runner {
                println!("bench_gate: gating against runner label {label:?} (flat fallback)");
            }
            let backed = match gate::runner_backed(&baseline, runner.as_deref()) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("bench_gate: bad baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Err(e) = std::fs::write(out_path, gate::means_to_json(&fresh)) {
                eprintln!("bench_gate: cannot write {out_path}: {e}");
                return ExitCode::from(2);
            }
            print!("{}", gate::report(&committed, &fresh, threshold, &backed));
            let findings = gate::check(&committed, &fresh, threshold, &backed);
            let fatal = findings.iter().filter(|f| f.is_fatal()).count();
            let warned = findings.len() - fatal;
            if warned > 0 {
                println!(
                    "bench_gate: WARN — {warned} runner-sensitive bench(es) moved beyond \
                     {threshold}x with no per-runner baseline (promote this runner's \
                     numbers to gate them hard)"
                );
            }
            if fatal == 0 {
                println!(
                    "bench_gate: OK ({} fresh benches, threshold {threshold}x)",
                    fresh.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "bench_gate: FAIL — {fatal} gated bench(es) regressed beyond {threshold}x"
                );
                ExitCode::FAILURE
            }
        }
        ["write-baseline", csv_path, out_path] => {
            let csv = match read(csv_path) {
                Ok(c) => c,
                Err(e) => return e,
            };
            let fresh = gate::parse_csv(&csv, &baseline_name);
            if fresh.is_empty() {
                eprintln!("bench_gate: no '{baseline_name}' rows in {csv_path}");
                return ExitCode::from(2);
            }
            // Regeneration replaces the flat (dev-machine) means but must
            // carry hand-promoted per-runner entries through. A malformed
            // existing file is an error, not an empty section — silently
            // dropping promoted entries would quietly widen the CI gate.
            let runners = match std::fs::read_to_string(out_path) {
                Ok(existing) => match gate::parse_runners(&existing) {
                    Ok(runners) => runners,
                    Err(e) => {
                        eprintln!(
                            "bench_gate: refusing to regenerate {out_path}: existing \
                             baseline is malformed ({e}); fix or remove it first"
                        );
                        return ExitCode::from(2);
                    }
                },
                Err(_) => Default::default(), // no existing baseline file
            };
            if let Err(e) = std::fs::write(out_path, gate::baseline_to_json(&fresh, &runners)) {
                eprintln!("bench_gate: cannot write {out_path}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "bench_gate: wrote {} means to {out_path} ({} per-runner baseline(s) preserved)",
                fresh.len(),
                runners.len()
            );
            ExitCode::SUCCESS
        }
        ["promote", artifact_path, baseline_path] => {
            let Some(label) = runner else {
                eprintln!("bench_gate: promote requires --runner <label>");
                return usage();
            };
            let (artifact, baseline) = match (read(artifact_path), read(baseline_path)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let pr_means = match gate::parse_baseline_json(&artifact) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("bench_gate: bad artifact {artifact_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match gate::promote(&baseline, &pr_means, &label) {
                Ok(rewritten) => {
                    if let Err(e) = std::fs::write(baseline_path, &rewritten) {
                        eprintln!("bench_gate: cannot write {baseline_path}: {e}");
                        return ExitCode::from(2);
                    }
                    let gated = pr_means.keys().filter(|b| gate::is_gated(b)).count();
                    println!(
                        "bench_gate: promoted {gated} gated bench(es) from {artifact_path} \
                         into {baseline_path} under runner {label:?}"
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bench_gate: promote failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
