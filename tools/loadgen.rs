//! Load generator for the PI2 HTTP server (logic in `pi2_bench::load`).
//!
//! ```text
//! loadgen [--workload covid|sales|…] [--rows N] [--sessions 8]
//!         [--events 200] [--addr HOST:PORT] [--ws] [--cluster N]
//!         [--append-every N] [--fail-on-errors]
//! ```
//!
//! Without `--addr`, boots an in-process `pi2::server` over loopback,
//! registers the workload, and drives it — the self-contained mode CI's
//! `server-smoke` step uses. With `--addr`, targets an already-running
//! server that has the same workload registered under the same name (the
//! event mix is still recorded from a local generation with the bench
//! seed, so both sides agree on the interface).
//!
//! `--rows N` swaps the paper workload for the big tier: the interface is
//! generated over `big_catalog(N)` (registered as workload `big`), so the
//! reported latencies measure end-to-end serving when every widget event
//! answers against N-row tables — the in-engine `engine/exec_big_*`
//! numbers with the wire protocol and session machinery on top.
//!
//! Each of the N sessions opens its own keep-alive connection, replays the
//! recorded event mix, and closes; the report prints throughput and
//! p50/p95/p99 per-event latency. Exit status is non-zero under
//! `--fail-on-errors` when any response was not a `200` patch.
//!
//! `--ws` switches to the protocol v2 push mode: one writer session
//! replays the mix over a WebSocket while `--sessions` subscriber
//! connections (each with its own wire session, subscribed to the shared
//! workload channel) receive every resulting patch as a server-initiated
//! frame. The report then carries *two* latency distributions — request
//! (writer send → own response) and push (writer send → subscriber
//! receive) — since push latency is the figure of merit for streaming.
//!
//! `--append-every N` mixes writes into the replay: every Nth request
//! per session becomes a protocol v2 `append` of one synthesized row to
//! a table the workload's queries read (so each write invalidates at
//! least one view). Read and write latency percentiles are reported as
//! separate distributions — an append pays catalogue versioning and
//! fan-out that a memo-served read never sees. CI's append-mix smoke
//! runs this with `--fail-on-errors`.
//!
//! `--cluster N` boots an N-process fleet instead: N `pi2-node` siblings
//! (the binary must sit next to `loadgen` in the target directory —
//! `cargo build -p pi2-cluster` first) joined over loopback, the load
//! driven at node 0, and each node's shared-cache counters reported at
//! the end. The event mix is recorded from a local generation with the
//! *quick* config — the same deterministic config every node registers
//! with — so the whole fleet agrees on the interface. CI's
//! `cluster-smoke` step runs this with 2 nodes.

use pi2::server::{Http1Client, ServerConfig};
use pi2::{GenerationConfig, Json, Pi2, Pi2Service};
use pi2_bench::load;
use pi2_workloads::{all_logs, catalog, log, LogKind};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--workload covid] [--rows N] [--sessions 8] [--events 200] \
         [--addr HOST:PORT] [--ws] [--cluster N] [--append-every N] [--fail-on-errors]"
    );
    ExitCode::from(2)
}

fn kind_by_name(name: &str) -> Option<LogKind> {
    all_logs()
        .iter()
        .map(|l| l.kind)
        .find(|k| log(*k).name == name)
}

/// The booted fleet of `--cluster N`: killed on drop so an early exit
/// (or a panic in the load loop) never leaks node processes.
struct FleetGuard {
    nodes: Vec<Child>,
    http: Vec<SocketAddr>,
}

impl Drop for FleetGuard {
    fn drop(&mut self) {
        for child in &mut self.nodes {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Boot `n` `pi2-node` processes into one fleet and wait for each node's
/// `READY <http> <peer>` line.
fn boot_fleet(n: usize, workload: &str) -> Result<FleetGuard, String> {
    let node_bin = std::env::current_exe()
        .map_err(|e| format!("cannot locate loadgen: {e}"))?
        .with_file_name(format!("pi2-node{}", std::env::consts::EXE_SUFFIX));
    if !node_bin.exists() {
        return Err(format!(
            "{} not found — build it first: cargo build -p pi2-cluster",
            node_bin.display()
        ));
    }
    // Bind-then-drop hands out n distinct free peer ports.
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot reserve peer ports: {e}"))?;
    let peers = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect::<Vec<_>>()
        .join(",");
    drop(listeners);
    let mut fleet = FleetGuard {
        nodes: Vec::new(),
        http: Vec::new(),
    };
    for node in 0..n {
        let mut child = Command::new(&node_bin)
            .args([
                "--node",
                &node.to_string(),
                "--peers",
                &peers,
                "--workload",
                workload,
            ])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", node_bin.display()))?;
        let stdout = child.stdout.take().unwrap();
        fleet.nodes.push(child);
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("node {node} died before READY: {e}"))?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("READY") {
            return Err(format!("node {node} said {line:?}, expected READY"));
        }
        let http = parts
            .next()
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| format!("node {node} announced no HTTP address: {line:?}"))?;
        eprintln!("loadgen: node {node} ready on http://{http}");
        fleet.http.push(http);
    }
    Ok(fleet)
}

/// Fetch one node's shared-cache counters from `/metrics`.
fn cluster_counters(addr: SocketAddr) -> Result<String, String> {
    let resp = Http1Client::connect(addr)
        .and_then(|mut c| c.get("/metrics"))
        .map_err(|e| format!("metrics fetch from {addr}: {e}"))?;
    let parsed = Json::parse(&resp.body).map_err(|e| format!("metrics from {addr}: {e}"))?;
    let counter = |path: &[&str]| {
        let mut j = Some(&parsed);
        for key in path {
            j = j.and_then(|j| j.get(key));
        }
        j.and_then(Json::as_i64).unwrap_or(-1)
    };
    let hits = counter(&["service", "cluster", "clusterHits"]);
    let misses = counter(&["service", "cluster", "clusterMisses"]);
    let total = hits + misses;
    let rate = if total > 0 {
        format!("{:.1}%", 100.0 * hits as f64 / total as f64)
    } else {
        "n/a".to_string()
    };
    Ok(format!(
        "clusterHits={hits} clusterMisses={misses} hitRate={rate} peerTimeouts={} \
         proxiedDispatches={} localResultHits={} localResultMisses={}",
        counter(&["service", "cluster", "peerTimeouts"]),
        counter(&["service", "cluster", "proxiedDispatches"]),
        counter(&["service", "resultCache", "hits"]),
        counter(&["service", "resultCache", "misses"]),
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = "covid".to_string();
    let mut rows: Option<usize> = None;
    let mut sessions: usize = 8;
    let mut events: usize = 200;
    let mut addr: Option<String> = None;
    let mut ws = false;
    let mut cluster: Option<usize> = None;
    let mut append_every: usize = 0;
    let mut fail_on_errors = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => match it.next() {
                Some(v) => workload = v.clone(),
                None => return usage(),
            },
            "--rows" => match it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                Some(v) => rows = Some(v),
                None => return usage(),
            },
            "--sessions" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => sessions = v,
                None => return usage(),
            },
            "--events" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => events = v,
                None => return usage(),
            },
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return usage(),
            },
            "--ws" => ws = true,
            "--cluster" => match it.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 2) {
                Some(v) => cluster = Some(v),
                None => return usage(),
            },
            "--append-every" => match it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                Some(v) => append_every = v,
                None => return usage(),
            },
            "--fail-on-errors" => fail_on_errors = true,
            _ => return usage(),
        }
    }
    if let Some(n) = cluster {
        if addr.is_some() || rows.is_some() || ws || append_every > 0 {
            eprintln!(
                "loadgen: --cluster is incompatible with --addr, --rows, --ws, and --append-every"
            );
            return ExitCode::from(2);
        }
        return run_cluster(n, &workload, sessions, events, fail_on_errors);
    }
    if append_every > 0 && ws {
        eprintln!("loadgen: --append-every drives the HTTP path; drop --ws");
        return ExitCode::from(2);
    }
    let generation = match rows {
        Some(n) => {
            workload = "big".to_string();
            eprintln!("loadgen: generating big-tier interface over {n} rows (bench config)…");
            load::big_generation(n)
        }
        None => {
            let Some(kind) = kind_by_name(&workload) else {
                eprintln!(
                    "loadgen: unknown workload {workload:?} (known: {})",
                    all_logs()
                        .iter()
                        .map(|l| l.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::from(2);
            };
            eprintln!("loadgen: generating {workload} interface (bench config)…");
            load::generation_for(kind)
        }
    };
    let cycle = load::event_cycle(&generation);
    eprintln!(
        "loadgen: recorded event mix of {} events over {} interactions",
        cycle.len(),
        generation.interface.interactions.len()
    );
    // --append-every: synthesize the write payload before the generation
    // is handed to the server.
    let append_payload = if append_every > 0 {
        match load::append_payload(&generation) {
            Some((table, delta)) => {
                eprintln!(
                    "loadgen: every {append_every}th request appends {} row(s) to {table}",
                    delta.num_rows()
                );
                Some((table, delta))
            }
            None => {
                eprintln!("loadgen: no referenced non-empty table to append to");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    // Self-contained mode boots a server; --addr targets an external one.
    let (target, local) = match addr {
        Some(external) => {
            let Ok(mut resolved) = std::net::ToSocketAddrs::to_socket_addrs(&external.as_str())
            else {
                eprintln!("loadgen: cannot resolve {external}");
                return ExitCode::from(2);
            };
            let Some(target) = resolved.next() else {
                eprintln!("loadgen: {external} resolved to nothing");
                return ExitCode::from(2);
            };
            (target, None)
        }
        None => {
            let service = Arc::new(Pi2Service::new());
            if let Err(e) = service.register_generation(&workload, generation) {
                eprintln!("loadgen: register failed: {e}");
                return ExitCode::FAILURE;
            }
            let server = match pi2::serve(service, ServerConfig::default()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("loadgen: server failed to start: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "loadgen: serving {workload} on http://{}",
                server.local_addr()
            );
            (server.local_addr(), Some(server))
        }
    };

    let code = if let Some((table, delta)) = append_payload {
        match load::run_mixed_load(
            target,
            &workload,
            &cycle,
            sessions,
            events,
            append_every,
            &table,
            &delta,
        ) {
            Ok(report) => {
                println!("loadgen[{workload},mix={append_every}]: {report}");
                if fail_on_errors && report.errors() > 0 {
                    eprintln!(
                        "loadgen: FAIL — {} read + {} append errors",
                        report.read.errors, report.write.errors
                    );
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("loadgen: mixed run failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else if ws {
        match load::run_ws_load(target, &workload, &cycle, sessions, events) {
            Ok(report) => {
                println!("loadgen[{workload},ws]: {report}");
                let short = report.pushes != sessions * events;
                if fail_on_errors && (report.errors > 0 || short) {
                    eprintln!(
                        "loadgen: FAIL — {} errors, {}/{} pushes",
                        report.errors,
                        report.pushes,
                        sessions * events
                    );
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("loadgen: ws run failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match load::run_load(target, &workload, &cycle, sessions, events) {
            Ok(report) => {
                println!("loadgen[{workload}]: {report}");
                if fail_on_errors && report.errors > 0 {
                    eprintln!("loadgen: FAIL — {} protocol errors", report.errors);
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("loadgen: run failed: {e}");
                ExitCode::FAILURE
            }
        }
    };
    if let Some(server) = local {
        server.shutdown();
    }
    code
}

/// The `--cluster N` mode: boot a fleet, drive the load at node 0, and
/// report every node's shared-cache counters.
fn run_cluster(
    n: usize,
    workload: &str,
    sessions: usize,
    events: usize,
    fail_on_errors: bool,
) -> ExitCode {
    let Some(kind) = kind_by_name(workload) else {
        eprintln!(
            "loadgen: unknown workload {workload:?} (known: {})",
            all_logs()
                .iter()
                .map(|l| l.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };
    // The nodes register with the quick config; recording the event mix
    // from the *same* deterministic generation keeps every process on
    // the identical interface (and the shared caches on agreeing keys).
    eprintln!("loadgen: generating {workload} interface (quick config)…");
    let queries = log(kind).queries;
    let sqls: Vec<&str> = queries.iter().map(String::as_str).collect();
    let generation = match Pi2::new(catalog()).generate_with(&sqls, &GenerationConfig::quick()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("loadgen: generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cycle = load::event_cycle(&generation);
    eprintln!(
        "loadgen: recorded event mix of {} events over {} interactions",
        cycle.len(),
        generation.interface.interactions.len()
    );
    let fleet = match boot_fleet(n, workload) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let code = match load::run_load(fleet.http[0], workload, &cycle, sessions, events) {
        Ok(report) => {
            println!("loadgen[{workload},cluster={n}]: {report}");
            if fail_on_errors && report.errors > 0 {
                eprintln!("loadgen: FAIL — {} protocol errors", report.errors);
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("loadgen: cluster run failed: {e}");
            ExitCode::FAILURE
        }
    };
    for (node, &addr) in fleet.http.iter().enumerate() {
        match cluster_counters(addr) {
            Ok(line) => println!("loadgen[{workload},cluster={n}] node {node}: {line}"),
            Err(e) => eprintln!("loadgen: {e}"),
        }
    }
    code
}
