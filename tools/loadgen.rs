//! Load generator for the PI2 HTTP server (logic in `pi2_bench::load`).
//!
//! ```text
//! loadgen [--workload covid|sales|…] [--rows N] [--sessions 8]
//!         [--events 200] [--addr HOST:PORT] [--ws] [--fail-on-errors]
//! ```
//!
//! Without `--addr`, boots an in-process `pi2::server` over loopback,
//! registers the workload, and drives it — the self-contained mode CI's
//! `server-smoke` step uses. With `--addr`, targets an already-running
//! server that has the same workload registered under the same name (the
//! event mix is still recorded from a local generation with the bench
//! seed, so both sides agree on the interface).
//!
//! `--rows N` swaps the paper workload for the big tier: the interface is
//! generated over `big_catalog(N)` (registered as workload `big`), so the
//! reported latencies measure end-to-end serving when every widget event
//! answers against N-row tables — the in-engine `engine/exec_big_*`
//! numbers with the wire protocol and session machinery on top.
//!
//! Each of the N sessions opens its own keep-alive connection, replays the
//! recorded event mix, and closes; the report prints throughput and
//! p50/p95/p99 per-event latency. Exit status is non-zero under
//! `--fail-on-errors` when any response was not a `200` patch.
//!
//! `--ws` switches to the protocol v2 push mode: one writer session
//! replays the mix over a WebSocket while `--sessions` subscriber
//! connections (each with its own wire session, subscribed to the shared
//! workload channel) receive every resulting patch as a server-initiated
//! frame. The report then carries *two* latency distributions — request
//! (writer send → own response) and push (writer send → subscriber
//! receive) — since push latency is the figure of merit for streaming.

use pi2::server::ServerConfig;
use pi2::Pi2Service;
use pi2_bench::load;
use pi2_workloads::{all_logs, log, LogKind};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--workload covid] [--rows N] [--sessions 8] [--events 200] \
         [--addr HOST:PORT] [--ws] [--fail-on-errors]"
    );
    ExitCode::from(2)
}

fn kind_by_name(name: &str) -> Option<LogKind> {
    all_logs()
        .iter()
        .map(|l| l.kind)
        .find(|k| log(*k).name == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = "covid".to_string();
    let mut rows: Option<usize> = None;
    let mut sessions: usize = 8;
    let mut events: usize = 200;
    let mut addr: Option<String> = None;
    let mut ws = false;
    let mut fail_on_errors = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => match it.next() {
                Some(v) => workload = v.clone(),
                None => return usage(),
            },
            "--rows" => match it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                Some(v) => rows = Some(v),
                None => return usage(),
            },
            "--sessions" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => sessions = v,
                None => return usage(),
            },
            "--events" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => events = v,
                None => return usage(),
            },
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return usage(),
            },
            "--ws" => ws = true,
            "--fail-on-errors" => fail_on_errors = true,
            _ => return usage(),
        }
    }
    let generation = match rows {
        Some(n) => {
            workload = "big".to_string();
            eprintln!("loadgen: generating big-tier interface over {n} rows (bench config)…");
            load::big_generation(n)
        }
        None => {
            let Some(kind) = kind_by_name(&workload) else {
                eprintln!(
                    "loadgen: unknown workload {workload:?} (known: {})",
                    all_logs()
                        .iter()
                        .map(|l| l.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::from(2);
            };
            eprintln!("loadgen: generating {workload} interface (bench config)…");
            load::generation_for(kind)
        }
    };
    let cycle = load::event_cycle(&generation);
    eprintln!(
        "loadgen: recorded event mix of {} events over {} interactions",
        cycle.len(),
        generation.interface.interactions.len()
    );

    // Self-contained mode boots a server; --addr targets an external one.
    let (target, local) = match addr {
        Some(external) => {
            let Ok(mut resolved) = std::net::ToSocketAddrs::to_socket_addrs(&external.as_str())
            else {
                eprintln!("loadgen: cannot resolve {external}");
                return ExitCode::from(2);
            };
            let Some(target) = resolved.next() else {
                eprintln!("loadgen: {external} resolved to nothing");
                return ExitCode::from(2);
            };
            (target, None)
        }
        None => {
            let service = Arc::new(Pi2Service::new());
            if let Err(e) = service.register_generation(&workload, generation) {
                eprintln!("loadgen: register failed: {e}");
                return ExitCode::FAILURE;
            }
            let server = match pi2::serve(service, ServerConfig::default()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("loadgen: server failed to start: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "loadgen: serving {workload} on http://{}",
                server.local_addr()
            );
            (server.local_addr(), Some(server))
        }
    };

    let code = if ws {
        match load::run_ws_load(target, &workload, &cycle, sessions, events) {
            Ok(report) => {
                println!("loadgen[{workload},ws]: {report}");
                let short = report.pushes != sessions * events;
                if fail_on_errors && (report.errors > 0 || short) {
                    eprintln!(
                        "loadgen: FAIL — {} errors, {}/{} pushes",
                        report.errors,
                        report.pushes,
                        sessions * events
                    );
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("loadgen: ws run failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match load::run_load(target, &workload, &cycle, sessions, events) {
            Ok(report) => {
                println!("loadgen[{workload}]: {report}");
                if fail_on_errors && report.errors > 0 {
                    eprintln!("loadgen: FAIL — {} protocol errors", report.errors);
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("loadgen: run failed: {e}");
                ExitCode::FAILURE
            }
        }
    };
    if let Some(server) = local {
        server.shutdown();
    }
    code
}
