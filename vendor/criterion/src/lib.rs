//! Vendored, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice it uses: [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input`, [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: after a warm-up, each benchmark runs batches until a
//! fixed time budget is spent and reports min / mean / median wall-clock
//! time per iteration. `--save-baseline <name>` appends `name,bench,mean_ns`
//! lines to `target/criterion-baselines.csv` so runs can be diffed; other
//! CLI flags are accepted and ignored.

use std::time::{Duration, Instant};

/// The benchmark harness.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Per-bench sample override (from `BenchmarkGroup::sample_size`).
    sample_size: Option<usize>,
    /// `--save-baseline` name, when given.
    baseline: Option<String>,
    /// Substring filter from the CLI, when given.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_secs(2),
            sample_size: None,
            baseline: None,
            filter: None,
        }
    }
}

impl Criterion {
    /// Parse the benchmark CLI (`--save-baseline`, optional filter); every
    /// unknown flag is accepted and ignored for compatibility.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--save-baseline" | "--baseline" | "--load-baseline" => {
                    self.baseline = args.next();
                }
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|s| s.parse::<f64>().ok()) {
                        self.measurement = Duration::from_secs_f64(secs);
                    }
                }
                "--bench" | "--test" | "--noplot" | "--quiet" | "--verbose" => {}
                s if s.starts_with('-') => {
                    // Unknown flag: skip (and its value if present).
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name, self.baseline.as_deref());
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = Some(n);
        self
    }

    /// Override the measurement time for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Finish the group (restores group-level overrides).
    pub fn finish(&mut self) {
        self.criterion.sample_size = None;
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` form.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; measures the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: Option<usize>,
}

impl Bencher {
    /// Measure `routine` repeatedly until the time budget (or sample-count
    /// override) is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples.clear();
        // Warm-up and batch sizing: aim for ≥ 30 samples within budget.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let probe = t0.elapsed().max(Duration::from_nanos(50));
        let target = self.sample_size.unwrap_or_else(|| {
            let fit = (self.budget.as_nanos() / probe.as_nanos().max(1)) as usize;
            fit.clamp(10, 300)
        });
        let deadline = Instant::now() + self.budget * 2;
        for _ in 0..target {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str, baseline: Option<&str>) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<44} min {:>12?}  mean {:>12?}  median {:>12?}  ({} samples)",
            min,
            mean,
            median,
            sorted.len()
        );
        if let Some(base) = baseline {
            use std::io::Write;
            // Bench binaries run with the package as cwd; anchor the CSV in
            // the enclosing cargo target directory (from the exe path).
            let dir = std::env::current_exe()
                .ok()
                .and_then(|exe| {
                    exe.ancestors()
                        .find(|a| a.file_name().is_some_and(|n| n == "target"))
                        .map(|p| p.to_path_buf())
                })
                .unwrap_or_else(|| std::path::PathBuf::from("target"));
            let _ = std::fs::create_dir_all(&dir);
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("criterion-baselines.csv"))
            {
                let _ = writeln!(f, "{base},{name},{}", mean.as_nanos());
            }
        }
    }
}

/// Re-export: benchmarks commonly use `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            measurement: Duration::from_millis(20),
            ..Criterion::default()
        };
        let mut runs = 0usize;
        c.bench_function("smoke/increment", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 10);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            measurement: Duration::from_millis(10),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(12);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert_eq!(format!("{}", BenchmarkId::from_parameter("x").0), "x");
    }
}
