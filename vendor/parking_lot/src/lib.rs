//! Vendored, API-compatible subset of `parking_lot` (v0.12 surface).
//!
//! The build environment has no network access; this shim provides the
//! poison-free `Mutex`/`RwLock` API on top of `std::sync` primitives.
//! Poisoned locks are recovered transparently — the workspace treats a
//! panicked critical section as a bug in its own code, not a reason to
//! poison unrelated readers.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
