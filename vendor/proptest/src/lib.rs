//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_flat_map` / `prop_recursive`,
//! range / tuple / string-pattern strategies, `prop::collection::vec`,
//! `prop::option::of`, and the `proptest!` / `prop_compose!` /
//! `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from upstream: failing cases are *not* shrunk — the failing
//! inputs are printed verbatim — and value distributions are simpler (no
//! bias toward edge cases). Case counts honour `ProptestConfig::with_cases`,
//! overridable via the `PROPTEST_CASES` environment variable,
//! and sampling is fully deterministic per (test name, case index).

pub mod strategy;

/// Configuration and deterministic RNG plumbing for generated test fns.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured by this subset.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Case-count override from the `PROPTEST_CASES` environment variable
    /// (like upstream's env-configurable default): the scheduled
    /// `proptest-deep` CI job sets it to run the same properties at depth
    /// while the PR-path run stays fast.
    pub fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// Deterministic per-case RNG: seeded from the test name and case index.
    pub fn case_rng(test_name: &str, case: u32) -> crate::strategy::TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37))
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// A strategy for `Vec`s of `element` with a length drawn from
        /// `size` (half-open range).
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy {
                element,
                min: size.start,
                max: size.end.saturating_sub(1),
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// A strategy yielding `None` ~25% of the time, `Some(inner)`
        /// otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Run each property over `config.cases` deterministic random cases,
/// printing the sampled inputs when a case fails (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::env_cases().unwrap_or(config.cases);
                for case in 0..cases {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    let __vals = ( $( $crate::strategy::Strategy::sample(&$strat, &mut rng) ),+ , );
                    let __repr = format!("{:?}", __vals);
                    let ( $($arg),+ , ) = __vals;
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(e) = result {
                        eprintln!(
                            "proptest: {} failed at case {case}/{} with inputs:\n  {}",
                            stringify!($name),
                            cases,
                            __repr,
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Compose a named strategy function from sub-strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ( $($arg:pat_param in $strat:expr),+ $(,)? ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ( $($strat),+ , ),
                move |( $($arg),+ , )| $body,
            )
        }
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}
