//! Core strategy trait and combinators for the vendored proptest subset.

use rand::{Rng, RngCore};
use std::rc::Rc;

/// The RNG handed to strategies (deterministic per test case).
pub type TestRng = rand::rngs::StdRng;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is a pure sampling function plus combinators.
pub trait Strategy: Sized {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Discard values failing `pred` (resamples; panics after 10 000
    /// consecutive rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F> {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Generate a value, then use it to pick a second strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Recursive structures: at each of `depth` levels, generate either a
    /// leaf (this strategy) or a branch produced by `f` over the shallower
    /// strategy. `_desired_size` / `_expected_branch` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let branch = f(level).boxed();
            let leaf = leaf.clone();
            level = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.gen_bool(0.5) {
                    leaf.sample(rng)
                } else {
                    branch.sample(rng)
                }
            }));
        }
        level
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive samples: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().unwrap().1.sample(rng)
    }
}

/// `prop::collection::vec`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.max <= self.min {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::option::of`.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

// --------------------------------------------------------------------------
// Primitive strategies: ranges, `any`, string patterns, tuples
// --------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (self.start as i128).wrapping_add((wide % span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo as i128).wrapping_add((wide % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + wide % span
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
#[derive(Clone)]
pub struct Any<A>(core::marker::PhantomData<A>);

/// An arbitrary value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(core::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderate-magnitude floats (upstream biases to specials;
        // the workspace's properties only need finite values).
        (rng.next_u64() as i64 as f64) * 1e-12
    }
}

/// `&'static str` as a pattern strategy: a sequence of literal characters
/// and `[...]` character classes, each optionally followed by `{m,n}`.
/// Supports exactly the pattern dialect used by this workspace's tests
/// (e.g. `"[a-z][a-z0-9_]{0,6}"`).
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if hi <= lo {
                *lo
            } else {
                rng.gen_range(*lo..=*hi)
            };
            for _ in 0..n {
                let i = rng.gen_range(0..chars.len());
                out.push(chars[i]);
            }
        }
        out
    }
}

type PatternAtom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms: Vec<PatternAtom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (a, b) = (chars[j], chars[j + 2]);
                    for c in a..=b {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        // Optional {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repeat lower bound"),
                    b.trim().parse().expect("bad repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((class, lo, hi));
    }
    atoms
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = case_rng("pattern", 0);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = case_rng("ranges", 1);
        for _ in 0..500 {
            let (a, b) = (0i64..60, 2u32..=8).sample(&mut rng);
            assert!((0..60).contains(&a));
            assert!((2..=8).contains(&b));
            let v = crate::prop::collection::vec(0usize..5, 1..4).sample(&mut rng);
            assert!(!v.is_empty() && v.len() <= 3);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // Leaf payload only exercises value generation
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(4, 16, 3, |inner| {
                crate::prop::collection::vec(inner, 1..3)
                    .prop_map(Tree::Node)
                    .boxed()
            });
        let mut rng = case_rng("recursive", 2);
        for _ in 0..100 {
            let t = strat.sample(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 5);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u = Union::new(vec![(9, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let mut rng = case_rng("union", 3);
        let ones: usize = (0..1000).filter(|_| u.sample(&mut rng) == 1).count();
        assert!(ones < 300, "weight-1 arm drawn {ones}/1000 times");
    }
}
