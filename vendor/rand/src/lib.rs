//! Vendored, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no network access, so the workspace vendors
//! the exact API slice it consumes: [`rngs::StdRng`] (xoshiro256++ seeded
//! via SplitMix64), the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with
//! `gen_range`/`gen_bool`, and [`seq::SliceRandom`] (`choose`/`shuffle`).
//! Determinism is the only contract the workspace relies on — streams are
//! *not* identical to upstream `rand`, but they are stable across runs and
//! platforms, which is what seeded search and the test suite need.

/// Low-level generator interface: a source of uniform 32/64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits → a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform range sampling.
pub mod distributions {
    use super::Rng;

    /// Ranges that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        fn sample_from<R: Rng>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    // Only f64 gets an impl: a second float impl would block the default
    // numeric-literal fallback at call sites like `gen_range(-4.0..4.0)`.
    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random selection and permutation over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(0..=5usize);
            assert!(v <= 5);
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
